//! Federated query: join Hive warehouse data with MySQL reference data —
//! "users could join Hadoop data with MySQL data using Presto-Hive-connector
//! and Presto-MySQL-connector, no need to copy any data" (§IV.A).
//!
//! Run with: `cargo run --release --example federated_join`

use presto_at_scale::fixtures::demo_platform;
use presto_core::Session;

fn main() -> presto_common::Result<()> {
    println!("== Federated join: hive × mysql, no data copy ==\n");
    let platform = demo_platform(500);
    let session = Session::new("hive", "rawdata");

    // Trips live in hive.rawdata.trips (nested Parquet on HDFS); city
    // geofences live in mysql.ops.cities. One SQL query spans both.
    let sql = "SELECT c.city_id, count(*) AS trips, sum(t.base.fare) AS revenue \
               FROM hive.rawdata.trips t \
               JOIN mysql.ops.cities c ON t.base.city_id = c.city_id \
               WHERE t.datestr = '2017-03-01' \
               GROUP BY 1 ORDER BY 2 DESC LIMIT 10";
    println!("query: {sql}\n");
    println!("plan:\n{}", platform.engine.explain(sql, &session)?);

    let result = platform.engine.execute_with_session(sql, &session)?;
    println!("{}", result.to_table());

    // What moved over the wire from MySQL? Only the projected columns —
    // predicate/projection/limit were applied store-side.
    println!(
        "mysql rows scanned: {}, rows streamed into the engine: {}",
        platform.mysql.metrics().get("mysql.rows_scanned"),
        platform.mysql.metrics().get("mysql.rows_streamed"),
    );
    println!(
        "hive partitions pruned: {}, hdfs listFiles calls: {}",
        platform.hive.metrics().get("hive.partitions_pruned"),
        platform.hdfs.metrics().get("hdfs.list_files"),
    );
    println!("\nfederated join complete — zero copy pipelines were built.");
    Ok(())
}
