//! Geospatial analytics (§VI): the paper's trips-per-city query, with the
//! Fig 13 automatic rewrite from `st_contains` into the QuadTree-backed
//! GeoJoin, and a measured comparison against the brute-force path.
//!
//! Run with: `cargo run --release --example geospatial`

use std::time::Instant;

use presto_at_scale::fixtures::demo_platform;
use presto_core::Session;
use presto_plan::OptimizerConfig;

fn main() -> presto_common::Result<()> {
    println!("== Geospatial queries with QuadTree (§VI) ==\n");
    let platform = demo_platform(2000);
    let session = Session::new("hive", "rawdata");

    // The §VI.C query: count trips per city by point-in-geofence.
    let sql = "SELECT c.city_id, count(*) \
               FROM hive.rawdata.trips AS t \
               JOIN mysql.ops.cities AS c \
                 ON st_contains(c.geo_shape, st_point(t.base.dest_lng, t.base.dest_lat)) \
               WHERE t.datestr = '2017-03-01' \
               GROUP BY 1 ORDER BY 2 DESC LIMIT 10";
    println!("query: {sql}\n");

    // With the geospatial rewrite (Fig 13): GeoJoin with build_geo_index.
    println!("optimized plan (build_geo_index rewrite ON):");
    println!("{}", platform.engine.explain(sql, &session)?);
    let start = Instant::now();
    let fast = platform.engine.execute_with_session(sql, &session)?;
    let fast_elapsed = start.elapsed();
    println!("{}", fast.to_table());
    println!("quadtree path: {fast_elapsed:?}\n");

    // Rewrite disabled: brute-force nested loop evaluating st_contains for
    // every (trip, city) pair — the Hive-MapReduce-style plan of §VI.C.
    let brute_session = session
        .clone()
        .with_optimizer(OptimizerConfig { geo_rewrite: false, ..OptimizerConfig::default() });
    println!("optimized plan (rewrite OFF → cross join + st_contains filter):");
    println!("{}", platform.engine.explain(sql, &brute_session)?);
    let start = Instant::now();
    let brute = platform.engine.execute_with_session(sql, &brute_session)?;
    let brute_elapsed = start.elapsed();

    assert_eq!(fast.rows(), brute.rows(), "both plans must agree");
    let speedup = brute_elapsed.as_secs_f64() / fast_elapsed.as_secs_f64().max(1e-9);
    println!("brute force path: {brute_elapsed:?}");
    println!("\nQuadTree speedup: {speedup:.1}x (paper reports >50x at production scale)");
    Ok(())
}
