//! Real-time dashboard on Druid through the connector (§IV.B, Fig 2):
//! aggregation pushdown ships the GROUP BY into the store's inverted
//! indexes; only aggregated rows reach the engine.
//!
//! Run with: `cargo run --release --example realtime_dashboard`

use presto_at_scale::fixtures::demo_platform;
use presto_core::Session;
use presto_plan::OptimizerConfig;

fn main() -> presto_common::Result<()> {
    println!("== Real-time dashboard: Presto-Druid connector (§IV.B) ==\n");
    let platform = demo_platform(2000);
    let session = Session::new("druid", "realtime");

    let sql = "SELECT city, count(*) AS orders, sum(amount) AS gmv \
               FROM orders WHERE status = 'completed' \
               GROUP BY city ORDER BY gmv DESC LIMIT 8";
    println!("query: {sql}\n");

    // Fig 2 right side: aggregation pushed into the connector.
    println!("plan WITH aggregation pushdown:");
    println!("{}", platform.engine.explain(sql, &session)?);
    platform.druid.store().metrics().reset();
    let pushed = platform.engine.execute_with_session(sql, &session)?;
    let pushed_cost = platform.druid.take_last_scan_cost();
    let pushed_streamed = platform.druid.store().metrics().get("rt.rows_streamed");
    println!("{}", pushed.to_table());

    // Fig 2 left side: pushdown disabled → the connector streams raw rows
    // and the engine aggregates.
    let no_push = session.clone().with_optimizer(OptimizerConfig {
        aggregation_pushdown: false,
        ..OptimizerConfig::default()
    });
    println!("plan WITHOUT aggregation pushdown:");
    println!("{}", platform.engine.explain(sql, &no_push)?);
    platform.druid.store().metrics().reset();
    let raw = platform.engine.execute_with_session(sql, &no_push)?;
    let raw_cost = platform.druid.take_last_scan_cost();
    let raw_streamed = platform.druid.store().metrics().get("rt.rows_streamed");

    assert_eq!(pushed.rows(), raw.rows(), "results must agree");
    println!(
        "rows streamed out of Druid:   with pushdown = {pushed_streamed}, without = {raw_streamed}"
    );
    println!(
        "virtual store cost:           with pushdown = {pushed_cost:?}, without = {raw_cost:?}"
    );
    println!(
        "\nWith pushdown, only aggregated rows cross the wire — the sub-second\n\
         path of Fig 16. Without it, every matching event streams into the engine."
    );
    Ok(())
}
