//! Quickstart: stand up the engine, register catalogs, run SQL.
//!
//! Run with: `cargo run --release --example quickstart`

use presto_at_scale::fixtures::demo_platform;
use presto_core::Session;
use presto_expr::RowExpression;

fn main() -> presto_common::Result<()> {
    println!("== Running Presto at Scale: quickstart ==\n");
    let platform = demo_platform(500);
    let session = Session::new("hive", "rawdata");

    // 1. The paper's §V.C example query shape: prune one nested field out of
    //    a wide struct, with predicate + partition pruning.
    let sql = "SELECT base.driver_uuid FROM trips \
               WHERE datestr = '2017-03-02' AND base.city_id IN (12) LIMIT 5";
    println!("query: {sql}\n");
    println!("plan:\n{}", platform.engine.explain(sql, &session)?);
    let result = platform.engine.execute_with_session(sql, &session)?;
    println!("{}", result.to_table());

    // 2. Aggregation over the warehouse.
    let sql = "SELECT datestr, count(*) AS trips, sum(base.fare) AS revenue \
               FROM trips GROUP BY 1 ORDER BY 1";
    println!("query: {sql}\n");
    let result = platform.engine.execute_with_session(sql, &session)?;
    println!("{}", result.to_table());

    // 3. Table I: RowExpression is self-contained and serializable — the
    //    property that makes connector pushdown possible (§IV.B).
    println!("Table I — self-contained RowExpressions:");
    let exprs: Vec<(&str, RowExpression)> = vec![
        ("ConstantExpression", RowExpression::bigint(1)),
        (
            "VariableReferenceExpression",
            RowExpression::column("city_id", 0, presto_common::DataType::Bigint),
        ),
        (
            "CallExpression",
            RowExpression::Call {
                handle: presto_expr::FunctionHandle::new(
                    "max",
                    vec![presto_common::DataType::Bigint],
                    presto_common::DataType::Bigint,
                ),
                args: vec![RowExpression::column("columnB", 1, presto_common::DataType::Bigint)],
            },
        ),
        (
            "SpecialFormExpression",
            RowExpression::SpecialForm {
                form: presto_expr::SpecialForm::In,
                args: vec![
                    RowExpression::column("x", 0, presto_common::DataType::Bigint),
                    RowExpression::bigint(12),
                ],
                return_type: presto_common::DataType::Boolean,
            },
        ),
        (
            "LambdaDefinitionExpression",
            RowExpression::LambdaDefinition {
                parameters: vec![
                    ("x".into(), presto_common::DataType::Bigint),
                    ("y".into(), presto_common::DataType::Bigint),
                ],
                body: Box::new(RowExpression::Call {
                    handle: presto_expr::FunctionHandle::new(
                        "add",
                        vec![presto_common::DataType::Bigint, presto_common::DataType::Bigint],
                        presto_common::DataType::Bigint,
                    ),
                    args: vec![
                        RowExpression::column("x", 0, presto_common::DataType::Bigint),
                        RowExpression::column("y", 1, presto_common::DataType::Bigint),
                    ],
                }),
            },
        ),
    ];
    for (kind, expr) in exprs {
        let serialized = expr.serialize();
        let back = RowExpression::deserialize(&serialized)?;
        assert_eq!(back, expr);
        println!("  {kind:<30} {expr}   (serialized {} bytes, round-trips)", serialized.len());
    }
    println!("\nquickstart complete.");
    Ok(())
}
